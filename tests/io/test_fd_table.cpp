// Unit tests for the fd-indexed slot table (io/fd_table.hpp): sizing,
// fast-range vs overflow routing, slot stability, generation bookkeeping.
#include "io/fd_table.hpp"

#include <gtest/gtest.h>

#include <sys/resource.h>

#include <thread>
#include <vector>

namespace icilk {
namespace {

struct DummyOp {
  int payload = 0;
};

TEST(FdTable, SizesFromRlimitWithinBounds) {
  FdTable<DummyOp> t;
  rlimit rl{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &rl), 0);
  EXPECT_GE(t.size(), FdTable<DummyOp>::kMinSlots);
  EXPECT_LE(t.size(), FdTable<DummyOp>::kMaxSlots);
  if (rl.rlim_cur != RLIM_INFINITY &&
      rl.rlim_cur <= FdTable<DummyOp>::kMaxSlots &&
      rl.rlim_cur >= FdTable<DummyOp>::kMinSlots) {
    EXPECT_EQ(t.size(), static_cast<std::size_t>(rl.rlim_cur));
  }
}

TEST(FdTable, FastRangeSlotsAreStableAndDistinct) {
  FdTable<DummyOp> t(/*size_hint=*/16);
  EXPECT_EQ(t.size(), 16u);
  auto& a = t.acquire(3);
  auto& b = t.acquire(7);
  EXPECT_NE(&a, &b);
  EXPECT_EQ(&t.acquire(3), &a);  // same slot every time
  EXPECT_EQ(t.find(3), &a);
  EXPECT_EQ(t.overflow_hits(), 0u);
}

TEST(FdTable, OverflowFdsRouteToMap) {
  FdTable<DummyOp> t(/*size_hint=*/8);
  EXPECT_FALSE(t.in_fast_range(8));
  EXPECT_EQ(t.find(100), nullptr);  // find never allocates
  auto& s = t.acquire(100);
  EXPECT_EQ(t.find(100), &s);       // acquire created it; now findable
  EXPECT_EQ(&t.acquire(100), &s);   // stable across calls
  EXPECT_GE(t.overflow_hits(), 2u);
}

TEST(FdTable, ForEachPendingVisitsOnlyOccupiedSlots) {
  FdTable<DummyOp> t(/*size_hint=*/8);
  DummyOp op1, op2;
  t.acquire(2).rd = &op1;
  t.acquire(100).wr = &op2;  // overflow slot
  int visited = 0;
  t.for_each_pending([&](FdTable<DummyOp>::Slot& s) {
    ++visited;
    s.rd = nullptr;
    s.wr = nullptr;
  });
  EXPECT_EQ(visited, 2);
  visited = 0;
  t.for_each_pending([&](FdTable<DummyOp>::Slot&) { ++visited; });
  EXPECT_EQ(visited, 0);
}

TEST(FdTable, ConcurrentAcquireOnDistinctFdsIsSafe) {
  FdTable<DummyOp> t(/*size_hint=*/256);
  constexpr int kThreads = 8;
  std::vector<std::thread> ths;
  std::atomic<int> mismatches{0};
  for (int i = 0; i < kThreads; ++i) {
    ths.emplace_back([&, i] {
      for (int round = 0; round < 2000; ++round) {
        const int fd = (round * kThreads + i) % 256;
        auto& s = t.acquire(fd);
        LockGuard<SpinLock> g(s.mu);
        if (t.find(fd) != &s) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : ths) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace icilk
