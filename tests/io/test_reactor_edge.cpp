// Reactor edge cases: timer ordering under churn, error propagation,
// fd-reuse robustness, concurrent independent fds, shutdown semantics.
#include <gtest/gtest.h>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/api.hpp"
#include "core/prompt_scheduler.hpp"
#include "io/reactor.hpp"
#include "net/socket.hpp"

namespace icilk {
namespace {

using namespace std::chrono_literals;

struct ReactorEdge : ::testing::Test {
  void SetUp() override {
    RuntimeConfig cfg;
    cfg.num_workers = 2;
    cfg.num_io_threads = 2;
    rt = std::make_unique<Runtime>(cfg, std::make_unique<PromptScheduler>());
    reactor = std::make_unique<IoReactor>(*rt);
  }
  void TearDown() override {
    reactor.reset();
    rt.reset();
  }
  std::unique_ptr<Runtime> rt;
  std::unique_ptr<IoReactor> reactor;
};

TEST_F(ReactorEdge, ManyTimersFireAndRoughlyOrder) {
  constexpr int kTimers = 30;
  std::vector<std::uint64_t> done(kTimers);
  std::vector<Future<void>> fs;
  for (int i = 0; i < kTimers; ++i) {
    fs.push_back(rt->submit(0, [&, i] {
      reactor->sleep_for(std::chrono::milliseconds(5 + (i % 5) * 10));
      done[static_cast<std::size_t>(i)] = now_ns();
    }));
  }
  for (auto& f : fs) f.get();
  // Timers in the same delay class must complete near each other; the
  // coarse property: every 5ms timer finishes before every 45ms timer.
  std::uint64_t max_fast = 0, min_slow = ~0ull;
  for (int i = 0; i < kTimers; ++i) {
    if (i % 5 == 0) {
      max_fast = std::max(max_fast, done[static_cast<std::size_t>(i)]);
    }
    if (i % 5 == 4) {
      min_slow = std::min(min_slow, done[static_cast<std::size_t>(i)]);
    }
  }
  EXPECT_LT(max_fast, min_slow);
}

TEST_F(ReactorEdge, WriteToReadClosedPipeReportsError) {
  int fds[2];
  ASSERT_EQ(::pipe2(fds, O_NONBLOCK | O_CLOEXEC), 0);
  ::close(fds[0]);  // no reader
  ::signal(SIGPIPE, SIG_IGN);
  const ssize_t r = rt->submit(0, [&] {
                        return reactor->write_some(fds[1], "x", 1);
                      }).get();
  EXPECT_EQ(r, -EPIPE);
  ::close(fds[1]);
}

TEST_F(ReactorEdge, ReadFromInvalidFdReportsError) {
  char buf[8];
  const ssize_t r = rt->submit(0, [&] {
                        return reactor->read_some(-1, buf, sizeof(buf));
                      }).get();
  EXPECT_EQ(r, -EBADF);
}

TEST_F(ReactorEdge, PeerResetPropagates) {
  const int lfd = net::listen_tcp(0);
  const int port = net::local_port(lfd);
  auto server = rt->submit(0, [&]() -> ssize_t {
    const ssize_t cfd = reactor->accept(lfd);
    if (cfd < 0) return cfd;
    char buf[64];
    // First read gets the bytes, second read observes EOF/RST.
    ssize_t n = reactor->read_some(static_cast<int>(cfd), buf, sizeof(buf));
    if (n <= 0) {
      ::close(static_cast<int>(cfd));
      return n;
    }
    n = reactor->read_some(static_cast<int>(cfd), buf, sizeof(buf));
    ::close(static_cast<int>(cfd));
    return n;
  });
  const int c = net::connect_tcp(static_cast<std::uint16_t>(port));
  ASSERT_GE(c, 0);
  while (::write(c, "hi", 2) < 0 && errno == EAGAIN) {
  }
  // Abortive close (RST): SO_LINGER 0.
  struct linger lg{1, 0};
  ::setsockopt(c, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  ::close(c);
  const ssize_t n = server.get();
  EXPECT_TRUE(n == 0 || n == -ECONNRESET) << n;
  ::close(lfd);
}

TEST_F(ReactorEdge, FdNumberReuseIsHandled) {
  // Open/close pipes repeatedly so fd numbers recycle; pending-op plumbing
  // (epoll registration cache) must not confuse generations.
  for (int round = 0; round < 20; ++round) {
    int fds[2];
    ASSERT_EQ(::pipe2(fds, O_NONBLOCK | O_CLOEXEC), 0);
    char buf[8];
    std::atomic<bool> started{false};
    auto f = rt->submit(0, [&] {
      started.store(true);
      return reactor->read_some(fds[0], buf, sizeof(buf));
    });
    while (!started.load()) std::this_thread::yield();
    std::this_thread::sleep_for(1ms);
    ASSERT_EQ(::write(fds[1], "ab", 2), 2);
    EXPECT_EQ(f.get(), 2) << "round " << round;
    ::close(fds[0]);
    ::close(fds[1]);
  }
}

TEST_F(ReactorEdge, IndependentFdsProgressConcurrently) {
  constexpr int kPipes = 8;
  int rd[kPipes], wr[kPipes];
  for (int i = 0; i < kPipes; ++i) {
    int fds[2];
    ASSERT_EQ(::pipe2(fds, O_NONBLOCK | O_CLOEXEC), 0);
    rd[i] = fds[0];
    wr[i] = fds[1];
  }
  std::atomic<int> got{0};
  std::vector<Future<void>> fs;
  for (int i = 0; i < kPipes; ++i) {
    fs.push_back(rt->submit(0, [&, i] {
      char buf[4];
      if (reactor->read_some(rd[i], buf, sizeof(buf)) == 1) {
        got.fetch_add(1);
      }
    }));
  }
  std::this_thread::sleep_for(10ms);
  // Complete in reverse order; all must resolve.
  for (int i = kPipes - 1; i >= 0; --i) {
    ASSERT_EQ(::write(wr[i], "z", 1), 1);
  }
  for (auto& f : fs) f.get();
  EXPECT_EQ(got.load(), kPipes);
  for (int i = 0; i < kPipes; ++i) {
    ::close(rd[i]);
    ::close(wr[i]);
  }
}

TEST_F(ReactorEdge, SleepZeroCompletesImmediately) {
  rt->submit(0, [&] { reactor->sleep_for(0ns); }).get();
}

TEST_F(ReactorEdge, InlineFastPathCounted) {
  int fds[2];
  ASSERT_EQ(::pipe2(fds, O_NONBLOCK | O_CLOEXEC), 0);
  ASSERT_EQ(::write(fds[1], "ready", 5), 5);
  const auto inline_before = reactor->ops_inline_for_test();
  char buf[8];
  rt->submit(0, [&] { return reactor->read_some(fds[0], buf, 5); }).get();
  EXPECT_EQ(reactor->ops_inline_for_test(), inline_before + 1);
  ::close(fds[0]);
  ::close(fds[1]);
}

}  // namespace
}  // namespace icilk
