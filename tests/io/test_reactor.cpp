// Tests for the epoll reactor and I/O futures: pipes, sockets, timers,
// suspension of task deques on blocked I/O, completion-driven resumption.
#include "io/reactor.hpp"

#include <gtest/gtest.h>
#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "core/api.hpp"
#include "core/prompt_scheduler.hpp"
#include "net/socket.hpp"

namespace icilk {
namespace {

using namespace std::chrono_literals;

struct ReactorTest : ::testing::Test {
  void SetUp() override {
    RuntimeConfig cfg;
    cfg.num_workers = 2;
    cfg.num_io_threads = 2;
    rt = std::make_unique<Runtime>(cfg, std::make_unique<PromptScheduler>());
    reactor = std::make_unique<IoReactor>(*rt);
  }
  void TearDown() override {
    reactor.reset();
    rt.reset();
  }

  /// Nonblocking pipe pair.
  void make_pipe(int fds[2]) {
    ASSERT_EQ(::pipe2(fds, O_NONBLOCK | O_CLOEXEC), 0);
  }

  std::unique_ptr<Runtime> rt;
  std::unique_ptr<IoReactor> reactor;
};

TEST_F(ReactorTest, InlineReadWhenDataReady) {
  int fds[2];
  make_pipe(fds);
  ASSERT_EQ(::write(fds[1], "hello", 5), 5);
  char buf[16];
  const ssize_t n = rt->submit(0, [&] {
                        return reactor->read_some(fds[0], buf, sizeof(buf));
                      }).get();
  EXPECT_EQ(n, 5);
  EXPECT_EQ(std::string(buf, 5), "hello");
  // Data was already available: the fast path should have completed inline.
  EXPECT_GE(reactor->ops_inline_for_test(), 1u);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST_F(ReactorTest, BlockedReadSuspendsAndResumes) {
  int fds[2];
  make_pipe(fds);
  char buf[16];
  std::atomic<bool> started{false};
  auto f = rt->submit(0, [&] {
    started.store(true);
    return reactor->read_some(fds[0], buf, sizeof(buf));  // blocks the TASK
  });
  while (!started.load()) std::this_thread::yield();
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(f.ready());  // no data yet: the future must still be pending
  ASSERT_EQ(::write(fds[1], "xyz", 3), 3);
  EXPECT_EQ(f.get(), 3);
  EXPECT_EQ(std::string(buf, 3), "xyz");
  // The suspension went through the deque machinery.
  EXPECT_GE(rt->stats_snapshot().gets_suspended, 1u);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST_F(ReactorTest, ReadReturnsZeroOnEof) {
  int fds[2];
  make_pipe(fds);
  ::close(fds[1]);
  char buf[8];
  EXPECT_EQ(rt->submit(0, [&] {
                return reactor->read_some(fds[0], buf, sizeof(buf));
              }).get(),
            0);
  ::close(fds[0]);
}

TEST_F(ReactorTest, ReadExactAcrossManyChunks) {
  int fds[2];
  make_pipe(fds);
  constexpr std::size_t kTotal = 8192;
  std::string expect;
  std::thread writer([&] {
    for (std::size_t i = 0; i < kTotal; i += 512) {
      std::string chunk(512, static_cast<char>('a' + (i / 512) % 26));
      std::size_t off = 0;
      while (off < chunk.size()) {
        const ssize_t w =
            ::write(fds[1], chunk.data() + off, chunk.size() - off);
        if (w > 0) {
          off += static_cast<std::size_t>(w);
        } else {
          std::this_thread::sleep_for(1ms);
        }
      }
      std::this_thread::sleep_for(1ms);  // force the reader to block
    }
  });
  for (std::size_t i = 0; i < kTotal; i += 512) {
    expect += std::string(512, static_cast<char>('a' + (i / 512) % 26));
  }
  std::string got(kTotal, '\0');
  EXPECT_EQ(rt->submit(0, [&] {
                return reactor->read_exact(fds[0], got.data(), kTotal);
              }).get(),
            static_cast<ssize_t>(kTotal));
  writer.join();
  EXPECT_EQ(got, expect);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST_F(ReactorTest, WriteAllLargerThanPipeBuffer) {
  int fds[2];
  make_pipe(fds);
  // Write well beyond the pipe buffer so the writer must block & resume.
  const std::string payload(1 << 20, 'q');
  std::string got;
  std::thread reader([&] {
    char buf[4096];
    std::size_t total = 0;
    while (total < payload.size()) {
      const ssize_t r = ::read(fds[0], buf, sizeof(buf));
      if (r > 0) {
        got.append(buf, static_cast<std::size_t>(r));
        total += static_cast<std::size_t>(r);
      } else {
        std::this_thread::sleep_for(1ms);
      }
    }
  });
  EXPECT_EQ(rt->submit(0, [&] {
                return reactor->write_all(fds[1], payload.data(),
                                          payload.size());
              }).get(),
            static_cast<ssize_t>(payload.size()));
  reader.join();
  EXPECT_EQ(got, payload);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST_F(ReactorTest, SleepForWaits) {
  const auto t0 = std::chrono::steady_clock::now();
  rt->submit(0, [&] { reactor->sleep_for(50ms); }).get();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, 45ms);
  EXPECT_LT(elapsed, 2000ms);
}

TEST_F(ReactorTest, ConcurrentSleepsCompleteInOrder) {
  std::vector<Future<void>> fs;
  std::vector<std::uint64_t> done(3);
  for (int i = 0; i < 3; ++i) {
    fs.push_back(rt->submit(0, [&, i] {
      reactor->sleep_for((i + 1) * 30ms);
      done[i] = now_ns();
    }));
  }
  for (auto& f : fs) f.get();
  EXPECT_LT(done[0], done[1]);
  EXPECT_LT(done[1], done[2]);
}

TEST_F(ReactorTest, AcceptAndEchoOverTcp) {
  const int lfd = net::listen_tcp(0);
  ASSERT_GE(lfd, 0);
  const int port = net::local_port(lfd);
  ASSERT_GT(port, 0);

  auto server = rt->submit(1, [&]() -> std::string {
    const ssize_t cfd = reactor->accept(lfd);
    if (cfd < 0) return "accept failed";
    char buf[64];
    const ssize_t n = reactor->read_some(static_cast<int>(cfd), buf,
                                         sizeof(buf));
    if (n <= 0) return "read failed";
    reactor->write_all(static_cast<int>(cfd), buf,
                       static_cast<std::size_t>(n));
    ::close(static_cast<int>(cfd));
    return std::string(buf, static_cast<std::size_t>(n));
  });

  const int cfd = net::connect_tcp(static_cast<std::uint16_t>(port));
  ASSERT_GE(cfd, 0);
  // Client side: plain blocking-ish loop on a nonblocking fd.
  const char* msg = "ping!";
  ssize_t w = -1;
  while ((w = ::write(cfd, msg, 5)) < 0 && errno == EAGAIN) {
  }
  ASSERT_EQ(w, 5);
  EXPECT_EQ(server.get(), "ping!");
  char echo[8];
  ssize_t r;
  while ((r = ::read(cfd, echo, sizeof(echo))) < 0 && errno == EAGAIN) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(r, 5);
  EXPECT_EQ(std::string(echo, 5), "ping!");
  ::close(cfd);
  ::close(lfd);
}

TEST_F(ReactorTest, ManyConcurrentConnectionsMultiplex) {
  // The headline property: ONE runtime with 2 workers time-multiplexes
  // dozens of concurrently-blocked connection tasks via I/O futures.
  const int lfd = net::listen_tcp(0);
  ASSERT_GE(lfd, 0);
  const int port = net::local_port(lfd);
  constexpr int kConns = 32;

  std::atomic<int> served{0};
  auto acceptor = rt->submit(1, [&] {
    for (int i = 0; i < kConns; ++i) {
      const ssize_t cfd = reactor->accept(lfd);
      ASSERT_GE(cfd, 0);
      fut_create([&, cfd] {  // one future routine per connection
        char buf[32];
        const ssize_t n =
            reactor->read_some(static_cast<int>(cfd), buf, sizeof(buf));
        if (n > 0) {
          reactor->write_all(static_cast<int>(cfd), buf,
                             static_cast<std::size_t>(n));
        }
        ::close(static_cast<int>(cfd));
        served.fetch_add(1);
      });
    }
  });

  std::vector<int> cfds;
  for (int i = 0; i < kConns; ++i) {
    const int fd = net::connect_tcp(static_cast<std::uint16_t>(port));
    ASSERT_GE(fd, 0);
    cfds.push_back(fd);
  }
  acceptor.get();
  // All connection tasks are now blocked reading. Write to each in reverse.
  for (int i = kConns - 1; i >= 0; --i) {
    const std::string msg = "m" + std::to_string(i);
    while (::write(cfds[i], msg.data(), msg.size()) < 0 && errno == EAGAIN) {
    }
  }
  // Read every echo back.
  for (int i = 0; i < kConns; ++i) {
    char buf[32];
    ssize_t r;
    while ((r = ::read(cfds[i], buf, sizeof(buf))) < 0 && errno == EAGAIN) {
      std::this_thread::sleep_for(1ms);
    }
    EXPECT_GT(r, 0);
    ::close(cfds[i]);
  }
  while (served.load() < kConns) std::this_thread::sleep_for(1ms);
  EXPECT_EQ(served.load(), kConns);
  ::close(lfd);
}

}  // namespace
}  // namespace icilk
