// Tests for socket helpers.
#include "net/socket.hpp"

#include <gtest/gtest.h>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace icilk::net {
namespace {

TEST(Socket, ListenEphemeralPort) {
  const int fd = listen_tcp(0);
  ASSERT_GE(fd, 0);
  const int port = local_port(fd);
  EXPECT_GT(port, 0);
  EXPECT_LE(port, 65535);
  ::close(fd);
}

TEST(Socket, ListenerIsNonblocking) {
  const int fd = listen_tcp(0);
  ASSERT_GE(fd, 0);
  // accept on a nonblocking listener with no clients returns EAGAIN.
  EXPECT_LT(::accept(fd, nullptr, nullptr), 0);
  EXPECT_TRUE(errno == EAGAIN || errno == EWOULDBLOCK);
  ::close(fd);
}

TEST(Socket, ConnectRoundTrip) {
  const int lfd = listen_tcp(0);
  ASSERT_GE(lfd, 0);
  const int port = local_port(lfd);
  const int cfd = connect_tcp(static_cast<std::uint16_t>(port));
  ASSERT_GE(cfd, 0);
  int sfd = -1;
  for (int spin = 0; spin < 1000 && sfd < 0; ++spin) {
    sfd = ::accept4(lfd, nullptr, nullptr, SOCK_NONBLOCK);
    if (sfd < 0 && errno != EAGAIN) break;
  }
  ASSERT_GE(sfd, 0);
  // Connected fd is nonblocking.
  const int flags = ::fcntl(cfd, F_GETFL, 0);
  EXPECT_TRUE(flags & O_NONBLOCK);
  ::close(cfd);
  ::close(sfd);
  ::close(lfd);
}

TEST(Socket, ConnectToClosedPortFails) {
  // Grab an ephemeral port, close it, then connect: must fail (refused).
  const int lfd = listen_tcp(0);
  const int port = local_port(lfd);
  ::close(lfd);
  const int r = connect_tcp(static_cast<std::uint16_t>(port));
  EXPECT_LT(r, 0);
}

TEST(Socket, NodelaySetsOption) {
  const int lfd = listen_tcp(0);
  const int cfd = connect_tcp(static_cast<std::uint16_t>(local_port(lfd)));
  ASSERT_GE(cfd, 0);
  EXPECT_EQ(set_nodelay(cfd), 0);
  ::close(cfd);
  ::close(lfd);
}

TEST(Socket, SocketErrorOnHealthyFd) {
  const int lfd = listen_tcp(0);
  const int cfd = connect_tcp(static_cast<std::uint16_t>(local_port(lfd)));
  ASSERT_GE(cfd, 0);
  EXPECT_EQ(socket_error(cfd), 0);
  ::close(cfd);
  ::close(lfd);
}

}  // namespace
}  // namespace icilk::net
