#!/usr/bin/env python3
"""Compare two bench/run_baseline.sh captures (BENCH_*.json).

Rows inside each benchmark section are matched by their identity fields
(everything non-numeric: scheduler, mode, pool, ...) plus the numeric
load-point fields that NAME a configuration rather than measure one
(rps, threads). Every other shared numeric field gets a delta; fields
where lower-is-better (latency / ns_per_op / allocs / errors) count as
REGRESSIONS when they worsen past the threshold, throughput fields
(ops_per_s, completed, *_hit_rate) when they DROP past it.

Usage: bench_diff.py OLD.json NEW.json [--threshold PCT]
       bench_diff.py --history [DIR] [--threshold PCT]

--history lists every BENCH_*.json capture in DIR (default: the repo
root, i.e. this script's parent directory) in chronological order with
its headline numbers, then diffs each consecutive pair — a one-command
view of how the baseline has drifted across PRs. The BENCH_latest.json
symlink run_baseline.sh maintains is excluded (it aliases a real
capture).

Exit code: 0 = no regression beyond threshold, 1 = regression(s),
2 = usage / parse error. Build-flag mismatches between the two captures
are warned about (an OFF-build baseline is not comparable to an ON one)
but do not by themselves fail the diff.
"""

import argparse
import glob
import json
import os
import sys

# Fields that name a load point rather than measure it: part of a row's
# identity, never diffed.
CONFIG_NUMERIC = {"rps", "threads", "ops", "fig1_duration_s"}
# Measured fields where a LOWER value is better.
LOWER_IS_BETTER = ("p99_ms", "p95_ms", "ns_per_op", "allocs_per_op",
                   "errors")
# Measured fields where a HIGHER value is better.
HIGHER_IS_BETTER = ("ops_per_s", "completed", "op_pool_hit_rate",
                    "fut_pool_hit_rate")


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def row_key(row):
    parts = []
    for k in sorted(row):
        v = row[k]
        if not is_number(v) or k in CONFIG_NUMERIC:
            parts.append(f"{k}={v}")
    return " ".join(parts)


def direction(field):
    if field in LOWER_IS_BETTER:
        return "lower"
    if field in HIGHER_IS_BETTER:
        return "higher"
    return None


def diff_section(name, old_rows, new_rows, threshold, out):
    """Returns the number of regressions found in one benchmark section."""
    old_by_key = {row_key(r): r for r in old_rows}
    regressions = 0
    matched = 0
    for new in new_rows:
        key = row_key(new)
        old = old_by_key.get(key)
        if old is None:
            out.append(f"  [{name}] {key}: new row (no baseline)")
            continue
        matched += 1
        for field in sorted(new):
            if not is_number(new[field]) or field in CONFIG_NUMERIC:
                continue
            if not is_number(old.get(field)):
                continue
            a, b = float(old[field]), float(new[field])
            if a == 0.0:
                delta = 0.0 if b == 0.0 else float("inf")
            else:
                delta = (b - a) / a * 100.0
            sense = direction(field)
            worse = (sense == "lower" and delta > threshold) or (
                sense == "higher" and delta < -threshold)
            flag = ""
            if worse:
                flag = "  <-- REGRESSION"
                regressions += 1
            # Keep the report readable: only print fields that moved, or
            # regressed.
            if abs(delta) >= 0.05 or worse:
                out.append(
                    f"  [{name}] {key}: {field} {a:g} -> {b:g} "
                    f"({delta:+.1f}%){flag}")
    if matched == 0 and old_rows and new_rows:
        out.append(f"  [{name}] no rows matched between captures")
    return regressions


def load_doc(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: cannot read {path}: {e}", file=sys.stderr)
        return None


def headline(doc):
    """One-line summary: the fig1 prompt-scheduler p99 at the highest rps
    plus capture provenance."""
    best = None
    for row in doc.get("fig1") or []:
        if not isinstance(row, dict) or row.get("scheduler") != "prompt":
            continue
        if is_number(row.get("rps")) and is_number(row.get("p99_ms")):
            if best is None or row["rps"] > best["rps"]:
                best = row
    if best is None:
        return "no fig1 prompt rows"
    return (f"prompt@{best['rps']:g}rps p99={best['p99_ms']:g}ms "
            f"completed={best.get('completed', '?')}")


def run_history(directory, threshold):
    captures = sorted(
        p for p in glob.glob(os.path.join(directory, "BENCH_*.json"))
        if os.path.basename(p) != "BENCH_latest.json")
    if not captures:
        print(f"bench_diff: no BENCH_*.json captures in {directory}",
              file=sys.stderr)
        return 2
    docs = []
    for path in captures:
        doc = load_doc(path)
        if doc is None:
            return 2
        docs.append((path, doc))
    # Filename order is chronological (BENCH_YYYYMMDD[_runN].json), but
    # trust the embedded timestamp when present.
    docs.sort(key=lambda pd: (pd[1].get("date") or "",
                              os.path.basename(pd[0])))

    print(f"{len(docs)} capture(s) in {directory}:")
    for path, doc in docs:
        print(f"  {os.path.basename(path):<28} sha {doc.get('git_sha', '?'):<9}"
              f" {doc.get('date', '?'):<22} {headline(doc)}")
    regressions = 0
    for (old_path, old_doc), (new_path, new_doc) in zip(docs, docs[1:]):
        print(f"\n== {os.path.basename(old_path)} -> "
              f"{os.path.basename(new_path)} ==")
        lines = []
        step = 0
        for section in sorted(set(old_doc) | set(new_doc)):
            old_rows = old_doc.get(section)
            new_rows = new_doc.get(section)
            if not isinstance(old_rows, list) or not isinstance(new_rows,
                                                                list):
                continue
            if not all(isinstance(r, dict) for r in old_rows + new_rows):
                continue
            step += diff_section(section, old_rows, new_rows, threshold,
                                 lines)
        for line in lines:
            print(line)
        if step:
            print(f"  {step} regression(s) beyond {threshold:g}% "
                  f"in this step")
        regressions += step
    print(f"\n{'FAIL' if regressions else 'OK'}: {regressions} "
          f"regression(s) across the history")
    return 1 if regressions else 0


def main():
    ap = argparse.ArgumentParser(
        description="diff two bench/run_baseline.sh JSON captures")
    ap.add_argument("old", nargs="?")
    ap.add_argument("new", nargs="?")
    ap.add_argument("--history", nargs="?", const="", metavar="DIR",
                    help="list + pairwise-diff all BENCH_*.json in DIR "
                         "(default: the repo root)")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="regression threshold in percent (default 10)")
    args = ap.parse_args()

    if args.history is not None:
        directory = args.history or os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))
        return run_history(directory, args.threshold)
    if args.old is None or args.new is None:
        ap.error("OLD.json and NEW.json are required unless --history")

    docs = []
    for path in (args.old, args.new):
        try:
            with open(path, encoding="utf-8") as f:
                docs.append(json.load(f))
        except (OSError, json.JSONDecodeError) as e:
            print(f"bench_diff: cannot read {path}: {e}", file=sys.stderr)
            return 2
    old_doc, new_doc = docs

    flags_old = old_doc.get("build_flags") or {}
    flags_new = new_doc.get("build_flags") or {}
    for k in sorted(set(flags_old) | set(flags_new)):
        if flags_old.get(k) != flags_new.get(k):
            print(f"WARNING: build flag {k} differs: "
                  f"{flags_old.get(k)} vs {flags_new.get(k)} "
                  f"(captures may not be comparable)")

    print(f"old: {args.old} (sha {old_doc.get('git_sha', '?')}, "
          f"{old_doc.get('date', '?')})")
    print(f"new: {args.new} (sha {new_doc.get('git_sha', '?')}, "
          f"{new_doc.get('date', '?')})")
    print(f"threshold: {args.threshold:g}%")

    regressions = 0
    lines = []
    for section in sorted(set(old_doc) | set(new_doc)):
        old_rows = old_doc.get(section)
        new_rows = new_doc.get(section)
        if not isinstance(old_rows, list) or not isinstance(new_rows, list):
            continue
        if not all(isinstance(r, dict) for r in old_rows + new_rows):
            continue
        regressions += diff_section(section, old_rows, new_rows,
                                    args.threshold, lines)
    for line in lines:
        print(line)

    if regressions:
        print(f"FAIL: {regressions} regression(s) beyond "
              f"{args.threshold:g}%")
        return 1
    print("OK: no regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
