#!/usr/bin/env bash
# Chaos-soak orchestrator for the fault-injection subsystem (src/inject/).
#
# Phases (default: all):
#   tsan      build with ICILK_SANITIZE=thread, run `ctest -L inject` plus
#             the bench/soak_inject driver — data races in the widened
#             windows surface here;
#   asan      same under ICILK_SANITIZE=address (lifetime bugs on the
#             faulted paths: recycled ops, cancelled fds, dead deques);
#   offcheck  build with ICILK_INJECT=OFF and PROVE the zero-overhead
#             contract: (a) the hot-path objects (reactor, scheduler,
#             runtime) contain no reference to any inject symbol, and
#             (b) micro_inject_overhead's probe loop costs the same as its
#             plain baseline loop.
#   attribution
#             run bench/attribution_smoke against the default build: a
#             live minicached under TCP load, then scrape /metrics and
#             /latency and assert the phase histograms are non-empty and
#             the worst-K timelines parse.
#   reqoff    build with ICILK_TRACE=OFF ICILK_REQTRACE=OFF and prove the
#             request-tracing compile-out: (a) the hot-path objects carry
#             no live ReqContext/TLS-binding symbols, and (b)
#             micro_reqtrace's attributed runtime loop costs the same as
#             its unattributed baseline loop.
#   wdoff     build with ICILK_WATCHDOG=OFF and prove the watchdog
#             compile-out: (a) the hot-path objects carry no watchdog
#             symbols (census hooks, state publication, Watchdog class),
#             (b) micro_watchdog's hook loops cost the same as its plain
#             baseline loop, and (c) `ctest -L obs` still passes (the
#             hook-dependent cases skip).
#   profoff   build with ICILK_PROFILE=OFF and prove the profiler
#             compile-out: (a) the hot-path objects carry no prof hooks
#             (context stores, thread registration), (b) micro_profiler's
#             hook loops cost the same as its plain baseline loop, and
#             (c) `ctest -L obs` still passes (attribution cases skip).
#
# Usage: scripts/soak.sh [tsan|asan|offcheck|attribution|reqoff|wdoff|profoff|all] \
#                        [soak-duration-s] [seed]
set -uo pipefail

PHASE="${1:-all}"
DURATION="${2:-2.0}"
SEED="${3:-1}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc)"
FAILURES=0

note() { printf '\n== %s ==\n' "$*"; }
fail() { printf 'FAIL: %s\n' "$*"; FAILURES=$((FAILURES + 1)); }

build() { # build <dir> <extra cmake args...>
  local dir="$1"
  shift
  cmake -B "$dir" -S "$REPO_ROOT" "$@" >/dev/null || return 1
  cmake --build "$dir" -j "$JOBS" >/dev/null
}

run_sanitizer_phase() { # run_sanitizer_phase <name> <ICILK_SANITIZE value>
  local name="$1" san="$2"
  local dir="$REPO_ROOT/build-soak-$name"
  note "$name: building (ICILK_SANITIZE=$san)"
  if ! build "$dir" -DICILK_SANITIZE="$san"; then
    fail "$name build"
    return
  fi
  note "$name: ctest -L inject"
  if ! (cd "$dir" && ctest -L inject --output-on-failure -j 2); then
    fail "$name ctest -L inject"
  fi
  note "$name: soak_inject ${DURATION}s seed=$SEED"
  if ! "$dir/bench/soak_inject" "$DURATION" "$SEED"; then
    fail "$name soak_inject (replay: soak_inject $DURATION $SEED)"
  fi
}

run_offcheck_phase() {
  local dir="$REPO_ROOT/build-soak-injectoff"
  note "offcheck: building (ICILK_INJECT=OFF)"
  if ! build "$dir" -DICILK_INJECT=OFF; then
    fail "offcheck build"
    return
  fi

  # (a) No inject symbol may be referenced (or emitted) by the hot-path
  # translation units. The itanium-mangled namespace is ...6injectE-free:
  # any occurrence of "6inject" means a hook survived the compile-out.
  note "offcheck: hot-path objects reference no inject symbols"
  local objs=(
    "src/io/CMakeFiles/icilk_io.dir/reactor.cpp.o"
    "src/core/CMakeFiles/icilk_core.dir/prompt_scheduler.cpp.o"
    "src/core/CMakeFiles/icilk_core.dir/runtime.cpp.o"
  )
  local o
  for o in "${objs[@]}"; do
    if [ ! -f "$dir/$o" ]; then
      fail "offcheck: missing object $o"
      continue
    fi
    if nm "$dir/$o" | grep -q '6inject'; then
      fail "offcheck: $o still references inject symbols:"
      nm "$dir/$o" | grep '6inject' | head -5
    else
      echo "clean: $o"
    fi
  done

  # (b) probe() folded to nothing: the probe loop and the baseline loop
  # must cost the same (<1.5x, far under the >2x an extra load+branch or a
  # call would show). Uses google-benchmark CSV output.
  note "offcheck: micro_inject_overhead probe == baseline"
  local csv
  csv="$("$dir/bench/micro_inject_overhead" --benchmark_format=csv \
        2>/dev/null | tr -d '"')"
  local base probe
  base="$(echo "$csv" | awk -F, '$1 == "BM_Baseline" {print $4}')"
  probe="$(echo "$csv" | awk -F, '$1 == "BM_ProbeNoEngine" {print $4}')"
  echo "BM_Baseline=${base}ns BM_ProbeNoEngine=${probe}ns"
  if [ -z "$base" ] || [ -z "$probe" ]; then
    fail "offcheck: could not parse micro_inject_overhead output"
  elif ! awk -v b="$base" -v p="$probe" 'BEGIN { exit !(p <= b * 1.5) }'; then
    fail "offcheck: probe loop ${probe}ns vs baseline ${base}ns (>1.5x)"
  fi

  # The engine itself still works compiled-out (tests skip the hook cases).
  note "offcheck: ctest -L inject (OFF build)"
  if ! (cd "$dir" && ctest -L inject --output-on-failure -j 2); then
    fail "offcheck ctest -L inject"
  fi
}

run_attribution_phase() {
  local dir="$REPO_ROOT/build"
  note "attribution: building (default flags)"
  if ! build "$dir"; then
    fail "attribution build"
    return
  fi
  note "attribution: bench/attribution_smoke"
  if ! "$dir/bench/attribution_smoke"; then
    fail "attribution smoke (minicached /metrics + /latency scrape)"
  fi
}

run_reqoff_phase() {
  local dir="$REPO_ROOT/build-soak-reqoff"
  note "reqoff: building (ICILK_TRACE=OFF ICILK_REQTRACE=OFF)"
  if ! build "$dir" -DICILK_TRACE=OFF -DICILK_REQTRACE=OFF; then
    fail "reqoff build"
    return
  fi

  # (a) No live request-tracing machinery in the hot-path objects: the
  # TLS binding accessors and ReqContext member functions must be absent.
  # (ReqContext may still appear as a mangled POINTER PARAMETER type,
  # "...10ReqContextE", in always-compiled signatures — that is a type
  # name, not code; the grep matches members, "ReqContext<len><name>".)
  note "reqoff: hot-path objects carry no request-tracing symbols"
  local objs=(
    "src/io/CMakeFiles/icilk_io.dir/reactor.cpp.o"
    "src/core/CMakeFiles/icilk_core.dir/prompt_scheduler.cpp.o"
    "src/core/CMakeFiles/icilk_core.dir/runtime.cpp.o"
  )
  local o
  for o in "${objs[@]}"; do
    if [ ! -f "$dir/$o" ]; then
      fail "reqoff: missing object $o"
      continue
    fi
    if nm "$dir/$o" | grep -q 'req_set_current\|req_thread_ring\|req_thread_where\|ReqContext[0-9]'; then
      fail "reqoff: $o still references request-tracing symbols:"
      nm "$dir/$o" | grep 'req_set_current\|req_thread_ring\|req_thread_where\|ReqContext[0-9]' | head -5
    else
      echo "clean: $o"
    fi
  done

  # (b) req_begin/req_end folded to stubs: the attributed runtime loop in
  # micro_reqtrace must cost the same as its unattributed baseline
  # (<1.4x; live attribution shows ~2x on this loop).
  note "reqoff: micro_reqtrace attributed == baseline"
  local out base probe
  out="$("$dir/bench/micro_reqtrace" 2>/dev/null)"
  echo "$out"
  base="$(echo "$out" | awk '/mode=runtime_base/ { for (i=1;i<=NF;i++) if ($i ~ /^ns_per_op=/) { sub("ns_per_op=","",$i); print $i } }')"
  probe="$(echo "$out" | awk '/mode=runtime / { for (i=1;i<=NF;i++) if ($i ~ /^ns_per_op=/) { sub("ns_per_op=","",$i); print $i } }')"
  if [ -z "$base" ] || [ -z "$probe" ]; then
    fail "reqoff: could not parse micro_reqtrace output"
  elif ! awk -v b="$base" -v p="$probe" 'BEGIN { exit !(p <= b * 1.4) }'; then
    fail "reqoff: attributed loop ${probe}ns vs baseline ${base}ns (>1.4x)"
  else
    echo "runtime_base=${base}ns runtime=${probe}ns"
  fi

  # The OFF build must still pass its own tests (obs label: the class
  # stays compiled, hook-dependent cases skip).
  note "reqoff: ctest -L obs (OFF build)"
  if ! (cd "$dir" && ctest -L obs --output-on-failure -j 2); then
    fail "reqoff ctest -L obs"
  fi
}

run_wdoff_phase() {
  local dir="$REPO_ROOT/build-soak-wdoff"
  note "wdoff: building (ICILK_WATCHDOG=OFF)"
  if ! build "$dir" -DICILK_WATCHDOG=OFF; then
    fail "wdoff build"
    return
  fi

  # (a) No watchdog machinery in the hot-path objects: the census hooks,
  # the worker-state publication helper, and the Watchdog class itself
  # ("...8Watchdog" mangled) must be absent. wd_publish_state is a
  # constexpr-inline store so it leaves no symbol either way; the grep
  # catches a non-folded out-of-line survivor.
  note "wdoff: hot-path objects carry no watchdog symbols"
  local objs=(
    "src/io/CMakeFiles/icilk_io.dir/reactor.cpp.o"
    "src/core/CMakeFiles/icilk_core.dir/prompt_scheduler.cpp.o"
    "src/core/CMakeFiles/icilk_core.dir/runtime.cpp.o"
  )
  local o
  for o in "${objs[@]}"; do
    if [ ! -f "$dir/$o" ]; then
      fail "wdoff: missing object $o"
      continue
    fi
    if nm "$dir/$o" | grep -q 'wd_census\|wd_publish_state\|8Watchdog'; then
      fail "wdoff: $o still references watchdog symbols:"
      nm "$dir/$o" | grep 'wd_census\|wd_publish_state\|8Watchdog' | head -5
    else
      echo "clean: $o"
    fi
  done

  # (b) The hooks folded to nothing: the state-publication and census-note
  # loops in micro_watchdog must cost the same as the plain baseline loop
  # (<1.5x; the live census hook's hashed registry shows ~60x on this
  # loop, so the margin is unambiguous).
  note "wdoff: micro_watchdog hooks == baseline"
  local csv base pub census
  csv="$("$dir/bench/micro_watchdog" --benchmark_format=csv \
        2>/dev/null | tr -d '"')"
  base="$(echo "$csv" | awk -F, '$1 == "BM_Baseline" {print $4}')"
  pub="$(echo "$csv" | awk -F, '$1 == "BM_PublishState" {print $4}')"
  census="$(echo "$csv" | awk -F, '$1 == "BM_CensusNote" {print $4}')"
  echo "BM_Baseline=${base}ns BM_PublishState=${pub}ns BM_CensusNote=${census}ns"
  if [ -z "$base" ] || [ -z "$pub" ] || [ -z "$census" ]; then
    fail "wdoff: could not parse micro_watchdog output"
  else
    if ! awk -v b="$base" -v p="$pub" 'BEGIN { exit !(p <= b * 1.5) }'; then
      fail "wdoff: publish-state loop ${pub}ns vs baseline ${base}ns (>1.5x)"
    fi
    if ! awk -v b="$base" -v p="$census" 'BEGIN { exit !(p <= b * 1.5) }'; then
      fail "wdoff: census-note loop ${census}ns vs baseline ${base}ns (>1.5x)"
    fi
  fi

  # (c) The OFF build still passes the observability tests (detector unit
  # tests run against the always-compiled class; runtime-integration cases
  # skip).
  note "wdoff: ctest -L obs (OFF build)"
  if ! (cd "$dir" && ctest -L obs --output-on-failure -j 2); then
    fail "wdoff ctest -L obs"
  fi

  # (d) Clean-mode soak: watchdog sampler alongside real load with zero
  # invariant trips required (rate 0 = no faults, the false-positive
  # gate) — in the DEFAULT build, where the watchdog is live.
  note "wdoff: clean-mode soak (default build, watchdog on, rate 0)"
  if [ -x "$REPO_ROOT/build/bench/soak_inject" ]; then
    if ! "$REPO_ROOT/build/bench/soak_inject" "$DURATION" "$SEED" 0; then
      fail "wdoff clean-mode soak (replay: soak_inject $DURATION $SEED 0)"
    fi
  else
    echo "skipping clean-mode soak (build/bench/soak_inject not built)"
  fi
}

run_profoff_phase() {
  local dir="$REPO_ROOT/build-soak-profoff"
  note "profoff: building (ICILK_PROFILE=OFF)"
  if ! build "$dir" -DICILK_PROFILE=OFF; then
    fail "profoff build"
    return
  fi

  # (a) No profiler machinery in the hot-path objects: the TLS context
  # accessors and thread-registration hooks must be absent. (The Profiler
  # class itself stays compiled in icilk_obs — endpoints and tests drive
  # it — but the runtime/scheduler/reactor objects must not reference it:
  # "8Profiler" in a hot-path object means a hook survived.)
  note "profoff: hot-path objects carry no profiler symbols"
  local objs=(
    "src/io/CMakeFiles/icilk_io.dir/reactor.cpp.o"
    "src/core/CMakeFiles/icilk_core.dir/prompt_scheduler.cpp.o"
    "src/core/CMakeFiles/icilk_core.dir/adaptive_scheduler.cpp.o"
    "src/core/CMakeFiles/icilk_core.dir/runtime.cpp.o"
  )
  local o
  for o in "${objs[@]}"; do
    if [ ! -f "$dir/$o" ]; then
      fail "profoff: missing object $o"
      continue
    fi
    if nm "$dir/$o" | grep -q 'prof_set_context\|prof_context\|prof_register_thread\|prof_unregister_thread\|8Profiler'; then
      fail "profoff: $o still references profiler symbols:"
      nm "$dir/$o" | grep 'prof_set_context\|prof_context\|prof_register_thread\|prof_unregister_thread\|8Profiler' | head -5
    else
      echo "clean: $o"
    fi
  done

  # (b) The hooks folded to nothing: micro_profiler's context-store and
  # scope loops must cost the same as the plain baseline loop (<1.5x; the
  # live hooks are TLS stores, ~2-4x on this loop).
  note "profoff: micro_profiler hooks == baseline"
  local csv base setctx scope
  csv="$("$dir/bench/micro_profiler" --benchmark_format=csv \
        2>/dev/null | tr -d '"')"
  base="$(echo "$csv" | awk -F, '$1 == "BM_Baseline" {print $4}')"
  setctx="$(echo "$csv" | awk -F, '$1 == "BM_SetContext" {print $4}')"
  scope="$(echo "$csv" | awk -F, '$1 == "BM_ProfScope" {print $4}')"
  echo "BM_Baseline=${base}ns BM_SetContext=${setctx}ns BM_ProfScope=${scope}ns"
  if [ -z "$base" ] || [ -z "$setctx" ] || [ -z "$scope" ]; then
    fail "profoff: could not parse micro_profiler output"
  else
    if ! awk -v b="$base" -v p="$setctx" 'BEGIN { exit !(p <= b * 1.5) }'; then
      fail "profoff: set-context loop ${setctx}ns vs baseline ${base}ns (>1.5x)"
    fi
    if ! awk -v b="$base" -v p="$scope" 'BEGIN { exit !(p <= b * 1.5) }'; then
      fail "profoff: prof-scope loop ${scope}ns vs baseline ${base}ns (>1.5x)"
    fi
  fi

  # (c) The OFF build still passes the observability tests (rendering and
  # window mechanics run against the always-compiled class; attribution
  # and signal cases skip).
  note "profoff: ctest -L obs (OFF build)"
  if ! (cd "$dir" && ctest -L obs --output-on-failure -j 2); then
    fail "profoff ctest -L obs"
  fi
}

case "$PHASE" in
  tsan) run_sanitizer_phase tsan thread ;;
  asan) run_sanitizer_phase asan address ;;
  offcheck) run_offcheck_phase ;;
  attribution) run_attribution_phase ;;
  reqoff) run_reqoff_phase ;;
  wdoff) run_wdoff_phase ;;
  profoff) run_profoff_phase ;;
  all)
    run_sanitizer_phase tsan thread
    run_sanitizer_phase asan address
    run_offcheck_phase
    run_attribution_phase
    run_reqoff_phase
    run_wdoff_phase
    run_profoff_phase
    ;;
  *)
    echo "usage: scripts/soak.sh [tsan|asan|offcheck|attribution|reqoff|wdoff|profoff|all] [duration-s] [seed]" >&2
    exit 2
    ;;
esac

if [ "$FAILURES" -ne 0 ]; then
  printf '\nsoak.sh: %d phase check(s) FAILED\n' "$FAILURES"
  exit 1
fi
printf '\nsoak.sh: all checks passed\n'
