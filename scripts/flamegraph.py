#!/usr/bin/env python3
"""Symbolize an icilk-profile folded-stack file (offline, via addr2line).

The profiler's SIGPROF handler records raw PCs only (symbolization is not
async-signal-safe); the folded file carries `# module 0xBASE 0xEND PATH`
headers captured from /proc/self/maps at the end of the window. This script
maps each PC to its module, rebases it to the module's link-time address
(min PT_LOAD p_vaddr, via readelf -lW), and batch-resolves names with
addr2line. No third-party deps — stdlib + binutils only.

Usage:
  flamegraph.py PROFILE.folded               # symbolized folded -> stdout
  flamegraph.py PROFILE.folded -o out.folded # ... -> file (feed to
                                             #     flamegraph.pl if you
                                             #     have it; the format is
                                             #     Brendan Gregg's)
  flamegraph.py PROFILE.folded --top 10      # self-weight hotspot table
  flamegraph.py PROFILE.folded --check       # CI smoke: parses, has
                                             # samples, frames symbolize
Return-address convention: frames are root-first and the LEAF is the exact
interrupted PC; every other frame is a return address, so we subtract 1
before resolving those (the call site, not the instruction after it).
"""
import argparse
import bisect
import os
import re
import shutil
import subprocess
import sys

MODULE_RE = re.compile(r"^# module 0x([0-9a-f]+) 0x([0-9a-f]+) (.+)$")


class Module:
    def __init__(self, base, end, path):
        self.base = base
        self.end = end
        self.path = path
        self.link_base = None  # lazily resolved

    def resolve_link_base(self):
        """Min PT_LOAD p_vaddr: the address the module was linked at."""
        if self.link_base is not None:
            return self.link_base
        self.link_base = 0
        try:
            out = subprocess.run(
                ["readelf", "-lW", self.path],
                capture_output=True, text=True, timeout=30,
            ).stdout
            vaddrs = [
                int(m.group(1), 16)
                for m in re.finditer(r"^\s*LOAD\s+\S+\s+(0x[0-9a-f]+)", out,
                                     re.M)
            ]
            if vaddrs:
                self.link_base = min(vaddrs)
        except (OSError, subprocess.TimeoutExpired):
            pass
        return self.link_base


class Profile:
    def __init__(self):
        self.exe = ""
        self.meta = {}       # hz, period_ns, window_ns, samples, dropped, ...
        self.modules = []    # sorted by base
        self.stacks = []     # (key, weight_ns)

    def module_for(self, addr):
        i = bisect.bisect_right(self._bases, addr) - 1
        if i >= 0 and self.modules[i].base <= addr < self.modules[i].end:
            return self.modules[i]
        return None

    def finish(self):
        self.modules.sort(key=lambda m: m.base)
        self._bases = [m.base for m in self.modules]


def parse(path):
    p = Profile()
    with open(path) as f:
        first = f.readline()
        if not first.startswith("# icilk-profile"):
            raise ValueError("not an icilk-profile folded file: %s" % path)
        for line in f:
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("#"):
                m = MODULE_RE.match(line)
                if m:
                    p.modules.append(Module(int(m.group(1), 16),
                                            int(m.group(2), 16), m.group(3)))
                elif line.startswith("# exe "):
                    p.exe = line[len("# exe "):]
                else:
                    for k, v in re.findall(r"(\w+) (\d+)", line):
                        p.meta[k] = int(v)
                continue
            key, _, weight = line.rpartition(" ")
            if not key:
                continue
            p.stacks.append((key, int(weight)))
    p.finish()
    return p


def symbolize(profile):
    """Map raw 0x... frames to names. Returns {raw_addr_str: name}."""
    # Collect, per module, the set of file-relative addresses to resolve.
    wants = {}  # path -> {vaddr_hex: [raw strings that map to it]}
    for key, _ in profile.stacks:
        frames = key.split(";")
        hex_frames = [f for f in frames if f.startswith("0x")]
        for idx, f in enumerate(hex_frames):
            addr = int(f, 16)
            # All but the leaf (last hex frame) are return addresses.
            lookup = addr if idx == len(hex_frames) - 1 else addr - 1
            mod = profile.module_for(lookup)
            if mod is None:
                continue
            vaddr = lookup - mod.base + mod.resolve_link_base()
            wants.setdefault(mod.path, {}).setdefault(hex(vaddr), []).append(f)

    names = {}
    addr2line = shutil.which("addr2line")
    if addr2line is None:
        return names
    for path, addrmap in wants.items():
        if not os.path.exists(path):
            continue
        addrs = list(addrmap.keys())
        try:
            out = subprocess.run(
                [addr2line, "-f", "-C", "-e", path],
                input="\n".join(addrs) + "\n",
                capture_output=True, text=True, timeout=120,
            ).stdout.splitlines()
        except (OSError, subprocess.TimeoutExpired):
            continue
        # Output alternates: function name line, file:line line.
        for i, vaddr in enumerate(addrs):
            if 2 * i >= len(out):
                break
            func = out[2 * i].strip()
            if not func or func == "??":
                continue
            for raw in addrmap[vaddr]:
                names[raw] = func
    return names


def rewrite_key(key, names):
    return ";".join(names.get(f, f) for f in key.split(";"))


def cmd_fold(profile, names, out):
    out.write("# icilk-profile v1 folded (symbolized)\n")
    out.write("# exe %s\n" % profile.exe)
    out.write("# hz %d period_ns %d window_ns %d\n" % (
        profile.meta.get("hz", 0), profile.meta.get("period_ns", 0),
        profile.meta.get("window_ns", 0)))
    out.write("# samples %d dropped %d offcpu_ns %d\n" % (
        profile.meta.get("samples", 0), profile.meta.get("dropped", 0),
        profile.meta.get("offcpu_ns", 0)))
    merged = {}
    for key, w in profile.stacks:
        k = rewrite_key(key, names)
        merged[k] = merged.get(k, 0) + w
    for k, w in sorted(merged.items(), key=lambda kv: -kv[1]):
        out.write("%s %d\n" % (k, w))


def cmd_top(profile, names, n, out):
    """Self-weight ranking: the leaf frame owns each stack's weight."""
    self_ns = {}
    total = 0
    for key, w in profile.stacks:
        frames = rewrite_key(key, names).split(";")
        leaf = frames[-1]
        # Prefix leaves like "steal"/"epoll_wait-bucket" keep their
        # category for context; symbolized task leaves stand alone.
        if key.startswith("offcpu;"):
            leaf = "offcpu:%s" % ";".join(frames[1:])
        self_ns[leaf] = self_ns.get(leaf, 0) + w
        total += w
    out.write("%-8s %-12s %s\n" % ("pct", "self_ms", "frame"))
    for leaf, ns in sorted(self_ns.items(), key=lambda kv: -kv[1])[:n]:
        out.write("%-8s %-12.3f %s\n" % (
            "%.1f%%" % (100.0 * ns / total if total else 0.0),
            ns / 1e6, leaf))


def cmd_check(profile, names):
    """CI smoke: nonzero samples and a usable symbolization rate."""
    errs = []
    if profile.meta.get("samples", 0) == 0:
        errs.append("no on-CPU samples recorded")
    raw = sum(1 for k, _ in profile.stacks for f in k.split(";")
              if f.startswith("0x"))
    resolved = sum(1 for k, _ in profile.stacks for f in k.split(";")
                   if f.startswith("0x") and f in names)
    if raw > 0 and resolved == 0:
        errs.append("0/%d frames symbolized (addr2line missing or modules "
                    "unreadable)" % raw)
    oncpu = [k for k, _ in profile.stacks if k.startswith("oncpu;")]
    if not oncpu:
        errs.append("no oncpu stacks")
    if errs:
        for e in errs:
            print("CHECK FAIL: %s" % e, file=sys.stderr)
        return 1
    print("CHECK OK: %d samples, %d stacks, %d/%d frames symbolized" % (
        profile.meta.get("samples", 0), len(profile.stacks), resolved, raw))
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("profile", help="folded file from the icilk profiler")
    ap.add_argument("-o", "--output", help="write here instead of stdout")
    ap.add_argument("--top", type=int, metavar="N",
                    help="print the top-N self-weight frames and exit")
    ap.add_argument("--check", action="store_true",
                    help="CI smoke: exit 1 unless samples exist and "
                         "frames symbolize")
    args = ap.parse_args()

    profile = parse(args.profile)
    names = symbolize(profile)

    if args.check:
        sys.exit(cmd_check(profile, names))
    out = open(args.output, "w") if args.output else sys.stdout
    try:
        if args.top:
            cmd_top(profile, names, args.top, out)
        else:
            cmd_fold(profile, names, out)
    finally:
        if args.output:
            out.close()


if __name__ == "__main__":
    main()
