// Quickstart: the I-Cilk programming model in one file.
//
//   * Runtime + scheduler construction
//   * spawn / sync fork-join parallelism
//   * futures (fut_create / get), including cross-priority ones
//   * priorities (0..63, higher = more urgent)
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <memory>
#include <vector>

#include "core/api.hpp"
#include "core/prompt_scheduler.hpp"
#include "core/runtime.hpp"

using namespace icilk;

// Classic fork-join: spawn runs the child in parallel with the caller's
// continuation; sync joins everything this task spawned.
static long parallel_sum(const std::vector<int>& v, std::size_t lo,
                         std::size_t hi) {
  if (hi - lo < 1024) {
    long s = 0;
    for (std::size_t i = lo; i < hi; ++i) s += v[i];
    return s;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  long left = 0;
  spawn([&] { left = parallel_sum(v, lo, mid); });
  const long right = parallel_sum(v, mid, hi);
  icilk::sync();
  return left + right;
}

int main() {
  RuntimeConfig cfg;
  cfg.num_workers = 4;
  cfg.num_levels = 8;  // this program uses priorities 0..7
  Runtime rt(cfg, std::make_unique<PromptScheduler>());

  // 1. Enter task context from a plain thread with submit(); join with the
  //    returned future.
  std::vector<int> data(100000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<int>(i % 7);
  }
  long total = rt.submit(0, [&] {
                   return parallel_sum(data, 0, data.size());
                 }).get();
  std::printf("parallel_sum = %ld\n", total);

  // 2. Futures escape scope: create here, get anywhere (even in a sibling
  //    task). A blocked get suspends only the TASK; the worker moves on.
  int combined =
      rt.submit(1, [] {
          auto a = fut_create([] { return 40; });
          auto b = fut_create_at(/*priority=*/5, [] { return 2; });
          return a.get() + b.get();
        }).get();
  std::printf("futures combined = %d\n", combined);

  // 3. Priorities: spawn_at tosses work to another level; the Prompt
  //    scheduler guarantees workers prefer the highest level with work.
  rt.submit(2, [] {
      std::printf("running at priority %d\n", current_priority());
      spawn_at(7, [] {
        std::printf("  urgent child at priority %d\n", current_priority());
      });
      spawn_at(0, [] {
        std::printf("  background child at priority %d\n",
                    current_priority());
      });
      icilk::sync();
    }).get();

  std::printf("quickstart done\n");
  return 0;
}
