// Chat broadcast server: I/O futures + task-aware synchronization working
// together. Each connection runs TWO future routines — a reader that
// appends incoming lines to a shared history, and a writer that waits on a
// TaskCondVar and pushes every new line to its client. No event loop, no
// callback state machines; every routine is straight-line code, and a
// blocked read/write/wait suspends only that task.
//
// The example runs a scripted three-client session against itself, then
// exits (pass `--serve SECONDS` to keep it up and try `nc` yourself).
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/api.hpp"
#include "core/prompt_scheduler.hpp"
#include "core/runtime.hpp"
#include "core/sync_primitives.hpp"
#include "io/reactor.hpp"
#include "net/socket.hpp"

using namespace icilk;

namespace {

class ChatServer {
 public:
  explicit ChatServer(Runtime& rt, IoReactor& reactor)
      : rt_(rt), reactor_(reactor) {
    listen_fd_ = net::listen_tcp(0);
    port_ = net::local_port(listen_fd_);
    rt_.submit(1, [this] { accept_loop(); });
  }

  int port() const { return port_; }

  void stop() {
    mu_.lock();
    stopping_ = true;
    mu_.unlock();
    cv_.notify_all();
    const int kick = net::connect_tcp(static_cast<std::uint16_t>(port_));
    if (kick >= 0) ::close(kick);
    while (live_.load() > 0) std::this_thread::sleep_for(
        std::chrono::milliseconds(1));
    ::close(listen_fd_);
  }

 private:
  void accept_loop() {
    for (;;) {
      const ssize_t fd = reactor_.accept(listen_fd_);
      {
        // Check under the lock so a stop() kick is never serviced.
        mu_.lock();
        const bool bail = stopping_;
        mu_.unlock();
        if (bail) {
          if (fd >= 0) ::close(static_cast<int>(fd));
          return;
        }
      }
      if (fd < 0) continue;
      live_.fetch_add(2);
      fut_create([this, fd] { reader(static_cast<int>(fd)); });
      fut_create([this, fd] { writer(static_cast<int>(fd)); });
    }
  }

  void reader(int fd) {
    char buf[1024];
    std::string pending;
    for (;;) {
      const ssize_t n = reactor_.read_some(fd, buf, sizeof(buf));
      if (n <= 0) break;
      pending.append(buf, static_cast<std::size_t>(n));
      std::size_t nl;
      while ((nl = pending.find('\n')) != std::string::npos) {
        std::string line = pending.substr(0, nl + 1);
        pending.erase(0, nl + 1);
        mu_.lock();
        history_.push_back(std::move(line));
        mu_.unlock();
        cv_.notify_all();  // wake every connection's writer
      }
    }
    ::shutdown(fd, SHUT_RDWR);  // unblocks this connection's writer
    mu_.lock();
    reader_gone_.push_back(fd);
    mu_.unlock();
    cv_.notify_all();
    live_.fetch_sub(1);
  }

  void writer(int fd) {
    std::size_t next = 0;
    for (;;) {
      std::string batch;
      {
        mu_.lock();
        cv_.wait(mu_, [&] {
          return next < history_.size() || stopping_ || is_gone(fd);
        });
        const bool bail = stopping_ || is_gone(fd);
        while (next < history_.size()) batch += history_[next++];
        mu_.unlock();
        if (bail && batch.empty()) break;
      }
      if (!batch.empty() &&
          reactor_.write_all(fd, batch.data(), batch.size()) < 0) {
        break;
      }
      mu_.lock();
      const bool bail = stopping_ || is_gone(fd);
      mu_.unlock();
      if (bail) break;
    }
    ::close(fd);
    live_.fetch_sub(1);
  }

  bool is_gone(int fd) {  // caller holds mu_
    for (const int g : reader_gone_) {
      if (g == fd) return true;
    }
    return false;
  }

  Runtime& rt_;
  IoReactor& reactor_;
  int listen_fd_ = -1;
  int port_ = 0;
  TaskMutex mu_;
  TaskCondVar cv_;
  std::vector<std::string> history_;  // guarded by mu_
  std::vector<int> reader_gone_;      // guarded by mu_
  bool stopping_ = false;             // guarded by mu_
  std::atomic<int> live_{0};
};

/// Scripted client: sends `say`, collects everything for `ms`.
std::string client_session(int port, const std::string& say, int ms) {
  const int fd = net::connect_tcp(static_cast<std::uint16_t>(port));
  if (fd < 0) return "<connect failed>";
  if (!say.empty()) {
    std::size_t off = 0;
    while (off < say.size()) {
      const ssize_t w = ::write(fd, say.data() + off, say.size() - off);
      if (w > 0) off += static_cast<std::size_t>(w);
    }
  }
  std::string got;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  char buf[1024];
  while (std::chrono::steady_clock::now() < deadline) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r > 0) {
      got.append(buf, static_cast<std::size_t>(r));
    } else if (r == 0) {
      break;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  ::close(fd);
  return got;
}

}  // namespace

int main(int argc, char** argv) {
  int serve_seconds = 0;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--serve") == 0) {
      serve_seconds = std::atoi(argv[i + 1]);
    }
  }

  RuntimeConfig cfg;
  cfg.num_workers = 2;
  cfg.num_io_threads = 2;
  cfg.num_levels = 2;
  Runtime rt(cfg, std::make_unique<PromptScheduler>());
  {
    IoReactor reactor(rt);
    ChatServer chat(rt, reactor);
    std::printf("chat server on port %d\n", chat.port());

    std::thread alice([&] {
      std::printf("alice sees:\n%s",
                  client_session(chat.port(), "alice: hi all\n", 300).c_str());
    });
    std::thread bob([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      std::printf("bob sees:\n%s",
                  client_session(chat.port(), "bob: hey alice\n", 250).c_str());
    });
    alice.join();
    bob.join();

    if (serve_seconds > 0) {
      std::printf("serving %d seconds... (nc 127.0.0.1 %d)\n", serve_seconds,
                  chat.port());
      std::this_thread::sleep_for(std::chrono::seconds(serve_seconds));
    }
    chat.stop();
  }
  rt.shutdown();
  std::printf("chat_broadcast done\n");
  return 0;
}
