// A runnable minicached deployment: starts the I-Cilk Memcached frontend,
// exercises it with a short scripted client session (so the example is
// self-contained), then — if you pass `--serve SECONDS` — keeps serving so
// you can talk to it yourself:
//
//   ./build/examples/kv_server --serve 60
//   $ printf 'set greeting 0 0 5\r\nhello\r\nget greeting\r\nquit\r\n' \
//       | nc 127.0.0.1 <port>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "apps/memcached/icilk_server.hpp"
#include "core/prompt_scheduler.hpp"
#include "net/socket.hpp"

using namespace icilk;

namespace {

std::string talk(int port, const std::string& script,
                 const std::string& until) {
  const int fd = net::connect_tcp(static_cast<std::uint16_t>(port));
  if (fd < 0) return "<connect failed>";
  std::size_t off = 0;
  std::string resp;
  while (off < script.size() || resp.find(until) == std::string::npos) {
    if (off < script.size()) {
      const ssize_t w =
          ::write(fd, script.data() + off, script.size() - off);
      if (w > 0) off += static_cast<std::size_t>(w);
    }
    char buf[4096];
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r > 0) {
      resp.append(buf, static_cast<std::size_t>(r));
    } else if (r == 0) {
      break;
    } else if (errno != EAGAIN && errno != EWOULDBLOCK) {
      break;
    }
  }
  ::close(fd);
  return resp;
}

}  // namespace

int main(int argc, char** argv) {
  int serve_seconds = 0;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--serve") == 0) {
      serve_seconds = std::atoi(argv[i + 1]);
    }
  }

  apps::ICilkMcServer::Config cfg;
  cfg.rt.num_workers = 4;     // the paper's Memcached configuration
  cfg.rt.num_io_threads = 4;  // 4 workers + 4 I/O threads
  cfg.rt.num_levels = 2;
  cfg.rt.watchdog_enabled = true;  // invariant sampler + flight recorder
  cfg.metrics_port = 0;            // /metrics, /latency, /health
  apps::ICilkMcServer server(cfg, std::make_unique<PromptScheduler>());
  std::printf(
      "minicached (I-Cilk frontend, prompt scheduler) on port %d, "
      "metrics on port %d\n",
      server.port(), server.metrics_port());

  // Scripted session: store, retrieve, counter, stats.
  std::printf("--- scripted session ---\n%s",
              talk(server.port(),
                   "set motd 0 0 26\r\ntask parallelism, applied!\r\n"
                   "get motd\r\n",
                   "END\r\n")
                  .c_str());
  std::printf("%s", talk(server.port(),
                         "set hits 0 0 1\r\n0\r\n"
                         "incr hits 41\r\nincr hits 1\r\n",
                         "42\r\n")
                        .c_str());
  std::printf("--- stats ---\n%s",
              talk(server.port(), "stats\r\n", "END\r\n").c_str());
  std::printf("--- watchdog health ---\n%s",
              talk(server.port(), "stats icilk health\r\n", "END\r\n")
                  .c_str());

  if (serve_seconds > 0) {
    std::printf("serving for %d seconds... (try `nc 127.0.0.1 %d`)\n",
                serve_seconds, server.port());
    std::this_thread::sleep_for(std::chrono::seconds(serve_seconds));
  }
  server.stop();
  std::printf("kv_server done\n");
  return 0;
}
