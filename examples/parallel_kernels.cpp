// Parallel kernels showcase: the job server's four task-parallel kernels
// (matrix multiply, fib, mergesort, Smith-Waterman) run standalone, with
// serial-vs-parallel timings. On a multicore box the speedups approach the
// worker count; on the single-core CI substrate they hover near 1x — the
// interesting part there is that oversubscription does NOT break anything.
#include <chrono>
#include <cstdio>
#include <memory>

#include "apps/job/kernels.hpp"
#include "core/api.hpp"
#include "core/prompt_scheduler.hpp"
#include "core/runtime.hpp"

using namespace icilk;
using namespace icilk::apps;

namespace {

template <typename F>
double time_ms(Runtime& rt, F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  rt.submit(0, std::forward<F>(f)).get();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  RuntimeConfig serial_cfg, par_cfg;
  serial_cfg.num_workers = 1;
  par_cfg.num_workers = 4;
  Runtime serial(serial_cfg, std::make_unique<PromptScheduler>());
  Runtime par(par_cfg, std::make_unique<PromptScheduler>());

  const int n = 96;
  const auto a = gen_matrix(n, 1), b = gen_matrix(n, 2);
  const auto ints = gen_ints(200000, 3);
  const auto dna_a = gen_dna(1024, 4), dna_b = gen_dna(1024, 5);

  std::printf("%-18s %12s %12s %9s\n", "kernel", "1 worker(ms)",
              "4 workers(ms)", "speedup");
  auto report = [&](const char* name, auto&& fn) {
    // Warm-up + best-of-3 to steady the numbers.
    double s = 1e18, p = 1e18;
    for (int i = 0; i < 3; ++i) s = std::min(s, time_ms(serial, fn));
    for (int i = 0; i < 3; ++i) p = std::min(p, time_ms(par, fn));
    std::printf("%-18s %12.2f %12.2f %8.2fx\n", name, s, p, s / p);
  };

  report("mm 96x96", [&] { kernel_mm(a, b, n); });
  report("fib 27", [] { kernel_fib(27); });
  report("mergesort 200k", [&] { kernel_sort(ints); });
  report("smith-waterman 1k", [&] { kernel_sw(dna_a, dna_b, 64); });

  // Correctness spot-check across runtimes.
  const std::uint64_t s1 = serial.submit(0, [&] { return kernel_sort(ints); }).get();
  const std::uint64_t s2 = par.submit(0, [&] { return kernel_sort(ints); }).get();
  std::printf("checksums match: %s\n", s1 == s2 ? "yes" : "NO");
  return 0;
}
