// Priority pipeline: the paper's core promise, demonstrated.
//
// A service handles two kinds of work on the SAME runtime:
//   * interactive requests (high priority) that need millisecond latency;
//   * a batch compression pipeline (low priority) that should soak up all
//     idle capacity.
// Running it twice — with promptness on (Prompt I-Cilk) and off (the
// work-first ablation) — shows why frequent priority checking matters:
// the batch work is identical, but interactive tail latency collapses
// only when workers abandon batch deques the moment a request arrives.
#include <atomic>
#include <cstdio>
#include <memory>
#include <vector>

#include "apps/email/codec.hpp"
#include "concurrent/rng.hpp"
#include "core/api.hpp"
#include "core/prompt_scheduler.hpp"
#include "core/runtime.hpp"
#include "load/histogram.hpp"
#include "load/openloop.hpp"

using namespace icilk;

namespace {

constexpr Priority kInteractive = 3;
constexpr Priority kBatch = 0;

std::string make_blob(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::string s;
  s.reserve(n);
  while (s.size() < n) {
    s.append("lorem ipsum dolor sit amet ");
    s.push_back(static_cast<char>('a' + rng.bounded(26)));
  }
  s.resize(n);
  return s;
}

void run_once(const char* label, PromptScheduler::Options opts) {
  RuntimeConfig cfg;
  cfg.num_workers = 3;
  cfg.num_levels = 4;
  Runtime rt(cfg, std::make_unique<PromptScheduler>(opts));

  // Batch pipeline: enough concurrent low-priority blob jobs to keep every
  // worker busy. Each job compresses its blob in 4 KiB chunks with a
  // spawn/sync per chunk — those are the op boundaries where promptness
  // checks happen, every ~50us of batch work.
  std::atomic<bool> stop{false};
  std::atomic<long> blobs_done{0};
  std::atomic<int> batch_live{0};
  const std::string blob = make_blob(256 * 1024, 7);
  std::function<void()> submit_batch_job = [&] {
    batch_live.fetch_add(1, std::memory_order_acq_rel);
    rt.submit(kBatch, [&] {
      constexpr std::size_t kChunk = 4096;
      for (std::size_t off = 0; off < blob.size(); off += kChunk) {
        std::string_view chunk(blob.data() + off,
                               std::min(kChunk, blob.size() - off));
        std::string packed;
        spawn([&packed, chunk] { packed = apps::lz_compress(chunk); });
        icilk::sync();  // <- promptness check site (and one at the spawn)
      }
      blobs_done.fetch_add(1, std::memory_order_relaxed);
      if (!stop.load(std::memory_order_acquire)) submit_batch_job();
      batch_live.fetch_sub(1, std::memory_order_acq_rel);
    });
  };
  for (int i = 0; i < 6; ++i) submit_batch_job();

  // Interactive requests: tiny bits of work arriving on an open-loop
  // schedule; latency measured from scheduled arrival.
  load::Histogram lat;
  const auto arrivals = load::poisson_schedule(300.0, 2.0, 99);
  const std::uint64_t epoch = now_ns();
  std::atomic<int> done{0};
  for (const auto at : arrivals) {
    load::wait_until_ns(epoch + at);
    rt.submit(kInteractive, [&lat, &done, t = epoch + at] {
      volatile int x = 0;  // ~a few microseconds of "request handling"
      for (int i = 0; i < 2000; ++i) x += i;
      lat.record(now_ns() - t);
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  while (done.load() < static_cast<int>(arrivals.size())) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_release);
  while (batch_live.load(std::memory_order_acquire) > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::printf("%-22s interactive %s | batch blobs=%ld\n", label,
              lat.summary().c_str(), blobs_done.load());
}

}  // namespace

int main() {
  PromptScheduler::Options prompt_on;  // defaults: check at every op
  PromptScheduler::Options prompt_off;
  prompt_off.check_period = 0;  // work-first: never abandon

  std::printf("300 interactive req/s against a saturating batch pipeline\n");
  run_once("promptness ON", prompt_on);
  run_once("promptness OFF", prompt_off);
  std::printf(
      "-> with checking off, interactive requests wait for whole batch\n"
      "   iterations; with it on, workers abandon batch work at the next\n"
      "   spawn/sync/get boundary.\n");
  return 0;
}
